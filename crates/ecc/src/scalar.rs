//! Scalar multiplication.
//!
//! The full 160-bit scalar multiplication is the operation behind Table 3's
//! "160-bit ECC: 9.4 ms" row. Three classic algorithms are provided so the
//! benchmark harness can ablate over them; all accumulate in Jacobian
//! coordinates and convert back to affine once at the end.
//!
//! Every ladder keeps its **addend affine** and adds through the
//! mixed-coordinate formulas ([`Curve::jacobian_add_mixed`], `Z2 = 1`):
//! the double-and-add and NAF ladders add the (already affine) base point
//! or its negation, and the windowed ladder normalizes its precomputed
//! table once ([`Curve::affine_window_table`]) before the main loop. This is the
//! access pattern the platform's 13-multiplication `pa_mixed` sequence
//! prices; the general Jacobian addition ([`Curve::jacobian_add`]) remains
//! the fallback for operands that are not in normalized form.
//!
//! Doublings go through [`Curve::jacobian_double`], which on `a = -3`
//! curves (the reproduction curve included) dispatches to the shortened
//! [`Curve::jacobian_double_fast`] formulas — the access pattern the
//! platform's 8-multiplication `ecc_pd_fast` sequence prices.

use bignum::BigUint;

use crate::curve::Curve;
use crate::point::{AffinePoint, JacobianPoint};

/// Scalar-multiplication algorithm selector.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum ScalarMulAlgorithm {
    /// Left-to-right double-and-add (one PA per set bit).
    DoubleAndAdd,
    /// Signed-digit non-adjacent form (PA on roughly one third of the digits).
    Naf,
    /// Fixed 4-bit windows with a precomputed table.
    Window4,
}

impl Curve {
    /// Computes `k · point` with the selected algorithm.
    ///
    /// On 256-bit curves the double-and-add ladder runs on the
    /// stack-allocated fixed backend ([`Curve::fixed_backend`]) — the same
    /// formula sequence on the same Montgomery residues, so the result is
    /// bit-identical to the heap ladder ([`Curve::scalar_mul_reference`]
    /// pins this).
    pub fn scalar_mul(
        &self,
        point: &AffinePoint,
        k: &BigUint,
        algorithm: ScalarMulAlgorithm,
    ) -> AffinePoint {
        if k.is_zero() || point.is_infinity() {
            return AffinePoint::Infinity;
        }
        if algorithm == ScalarMulAlgorithm::DoubleAndAdd {
            if let Some(result) = self.fixed_scalar_mul(point, k) {
                return result;
            }
        }
        self.scalar_mul_reference(point, k, algorithm)
    }

    /// Computes `k · point` on the heap (`BigUint`) ladder unconditionally
    /// — the pre-fixed-backend behaviour, kept as the differential baseline
    /// for tests and the `fixed_vs_heap` benchmark. The whole ladder
    /// (formulas *and* single field products) runs on a
    /// [`Curve::heap_only`] twin, so the baseline stays honest now that
    /// [`field::FpContext::mul`] itself routes 256-bit products through
    /// the fixed backend. [`Curve::scalar_mul`] is the fast path; results
    /// are identical.
    pub fn scalar_mul_reference(
        &self,
        point: &AffinePoint,
        k: &BigUint,
        algorithm: ScalarMulAlgorithm,
    ) -> AffinePoint {
        if k.is_zero() || point.is_infinity() {
            return AffinePoint::Infinity;
        }
        let heap = self.heap_only();
        let result = match algorithm {
            ScalarMulAlgorithm::DoubleAndAdd => double_and_add(&heap, point, k),
            ScalarMulAlgorithm::Naf => naf_mul(&heap, point, k),
            ScalarMulAlgorithm::Window4 => window_mul(&heap, point, k, 4),
        };
        heap.to_affine(&result)
    }

    /// Computes `k · base_point` with the default algorithm (double-and-add,
    /// matching the sequence counted by the paper's cycle analysis).
    pub fn scalar_mul_base(&self, k: &BigUint) -> AffinePoint {
        self.scalar_mul(self.base_point(), k, ScalarMulAlgorithm::DoubleAndAdd)
    }

    /// Precomputes the windowed ladder's table `[O, P, 2P, .., (2^w - 1)·P]`
    /// with every entry **normalized to affine form** — the one-time
    /// normalization that lets the main loop use mixed additions only.
    /// Exposed so tests can pin the ladder invariant (every addend is
    /// affine and the correct multiple) without re-deriving the table.
    pub fn affine_window_table(&self, point: &AffinePoint, window: usize) -> Vec<AffinePoint> {
        let table_len = 1usize << window;
        let mut table = Vec::with_capacity(table_len);
        table.push(AffinePoint::Infinity);
        table.push(point.clone());
        for i in 2..table_len {
            // Build in Jacobian, normalize immediately: the table is built
            // once per scalar multiplication, so the per-entry inversion is
            // the one-time cost that buys mixed additions in the main loop.
            let next = self.jacobian_add_mixed(&self.to_jacobian(&table[i - 1]), point);
            table.push(self.to_affine(&next));
        }
        table
    }
}

/// Computes `k · point` with the selected algorithm.
#[deprecated(note = "use the Curve::scalar_mul method")]
pub fn scalar_mul(
    curve: &Curve,
    point: &AffinePoint,
    k: &BigUint,
    algorithm: ScalarMulAlgorithm,
) -> AffinePoint {
    curve.scalar_mul(point, k, algorithm)
}

/// Computes `k · base_point` with the default algorithm.
#[deprecated(note = "use the Curve::scalar_mul_base method")]
pub fn scalar_mul_base(curve: &Curve, k: &BigUint) -> AffinePoint {
    curve.scalar_mul_base(k)
}

fn double_and_add(curve: &Curve, point: &AffinePoint, k: &BigUint) -> JacobianPoint {
    // The addend is the base point itself: already affine, so every
    // addition is a mixed addition.
    let mut acc = curve.to_jacobian(&AffinePoint::Infinity);
    for i in (0..k.bit_len()).rev() {
        acc = curve.jacobian_double(&acc);
        if k.bit(i) {
            acc = curve.jacobian_add_mixed(&acc, point);
        }
    }
    acc
}

/// Computes the non-adjacent form of `k` (least-significant digit first).
pub fn naf_digits(k: &BigUint) -> Vec<i8> {
    let mut digits = Vec::with_capacity(k.bit_len() + 1);
    let mut n = k.clone();
    let two = BigUint::from(2u64);
    let four = BigUint::from(4u64);
    while !n.is_zero() {
        if n.is_odd() {
            // d = 2 - (n mod 4): maps 1 -> 1 and 3 -> -1.
            let rem = (&n % &four).to_u64().expect("mod 4 fits");
            if rem == 1 {
                digits.push(1);
                n = &n - &BigUint::one();
            } else {
                digits.push(-1);
                n = &n + &BigUint::one();
            }
        } else {
            digits.push(0);
        }
        n = &n / &two;
    }
    digits
}

fn naf_mul(curve: &Curve, point: &AffinePoint, k: &BigUint) -> JacobianPoint {
    // Both addends (±P) are affine: negation does not disturb `Z = 1`.
    let digits = naf_digits(k);
    let neg_p = curve.negate(point);
    let mut acc = curve.to_jacobian(&AffinePoint::Infinity);
    for &d in digits.iter().rev() {
        acc = curve.jacobian_double(&acc);
        match d {
            1 => acc = curve.jacobian_add_mixed(&acc, point),
            -1 => acc = curve.jacobian_add_mixed(&acc, &neg_p),
            _ => {}
        }
    }
    acc
}

/// Precomputes the windowed ladder's affine table.
#[deprecated(note = "use the Curve::affine_window_table method")]
pub fn affine_window_table(curve: &Curve, point: &AffinePoint, window: usize) -> Vec<AffinePoint> {
    curve.affine_window_table(point, window)
}

fn window_mul(curve: &Curve, point: &AffinePoint, k: &BigUint, window: usize) -> JacobianPoint {
    let table = curve.affine_window_table(point, window);
    // Process the scalar in w-bit chunks, most significant first.
    let chunks = k.bit_len().div_ceil(window);
    let mut acc = curve.to_jacobian(&AffinePoint::Infinity);
    for chunk in (0..chunks).rev() {
        for _ in 0..window {
            acc = curve.jacobian_double(&acc);
        }
        let mut digit = 0usize;
        for b in (0..window).rev() {
            digit = (digit << 1) | k.bit(chunk * window + b) as usize;
        }
        if digit != 0 {
            acc = curve.jacobian_add_mixed(&acc, &table[digit]);
        }
    }
    acc
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::SeedableRng;

    #[test]
    fn algorithms_agree_on_toy_curve() {
        let curve = Curve::toy().unwrap();
        let mut rng = rand::rngs::StdRng::seed_from_u64(11);
        for _ in 0..10 {
            let p = curve.random_point(&mut rng);
            let k = BigUint::random_bits(&mut rng, 40);
            let reference = curve.scalar_mul(&p, &k, ScalarMulAlgorithm::DoubleAndAdd);
            assert_eq!(curve.scalar_mul(&p, &k, ScalarMulAlgorithm::Naf), reference);
            assert_eq!(
                curve.scalar_mul(&p, &k, ScalarMulAlgorithm::Window4),
                reference
            );
            assert!(curve.is_on_curve(&reference));
        }
    }

    #[test]
    fn algorithms_agree_on_p160() {
        let curve = Curve::p160_reproduction().unwrap();
        let mut rng = rand::rngs::StdRng::seed_from_u64(12);
        let p = curve.random_point(&mut rng);
        let k = BigUint::random_bits(&mut rng, 160);
        let reference = curve.scalar_mul(&p, &k, ScalarMulAlgorithm::DoubleAndAdd);
        assert_eq!(curve.scalar_mul(&p, &k, ScalarMulAlgorithm::Naf), reference);
        assert_eq!(
            curve.scalar_mul(&p, &k, ScalarMulAlgorithm::Window4),
            reference
        );
        assert!(curve.is_on_curve(&reference));
    }

    #[test]
    fn small_multiples_match_repeated_addition() {
        let curve = Curve::toy().unwrap();
        let mut rng = rand::rngs::StdRng::seed_from_u64(13);
        let p = curve.random_point(&mut rng);
        let mut acc = AffinePoint::Infinity;
        for k in 0u64..20 {
            let expected = acc.clone();
            let got = curve.scalar_mul(&p, &BigUint::from(k), ScalarMulAlgorithm::DoubleAndAdd);
            assert_eq!(got, expected, "k = {k}");
            acc = curve.add(&acc, &p);
        }
    }

    #[test]
    fn scalar_mul_distributes_over_addition_of_scalars() {
        let curve = Curve::toy().unwrap();
        let mut rng = rand::rngs::StdRng::seed_from_u64(14);
        let p = curve.random_point(&mut rng);
        let a = BigUint::from(123u64);
        let b = BigUint::from(456u64);
        let lhs = curve.scalar_mul(&p, &(&a + &b), ScalarMulAlgorithm::DoubleAndAdd);
        let rhs = curve.add(
            &curve.scalar_mul(&p, &a, ScalarMulAlgorithm::DoubleAndAdd),
            &curve.scalar_mul(&p, &b, ScalarMulAlgorithm::DoubleAndAdd),
        );
        assert_eq!(lhs, rhs);
    }

    #[test]
    fn naf_digits_reconstruct_the_scalar() {
        for k in [0u64, 1, 2, 3, 7, 255, 1_000_003, u64::MAX] {
            let digits = naf_digits(&BigUint::from(k));
            let mut value: i128 = 0;
            for (i, &d) in digits.iter().enumerate() {
                value += (d as i128) << i;
            }
            assert_eq!(value, k as i128);
            // Non-adjacency: no two consecutive non-zero digits.
            for w in digits.windows(2) {
                assert!(w[0] == 0 || w[1] == 0, "NAF property violated for {k}");
            }
        }
    }

    #[test]
    fn reference_ladder_runs_heap_only_and_matches_the_fast_path() {
        let curve = Curve::by_name("secp256k1").unwrap();
        assert!(curve.fixed_backend().is_some());
        let heap = curve.heap_only();
        assert!(heap.fixed_backend().is_none());
        assert!(heap.fp().fixed256().is_none());
        let mut rng = rand::rngs::StdRng::seed_from_u64(16);
        for _ in 0..3 {
            let k = BigUint::random_bits(&mut rng, 256);
            let fast = curve.scalar_mul(curve.base_point(), &k, ScalarMulAlgorithm::DoubleAndAdd);
            let reference = curve.scalar_mul_reference(
                curve.base_point(),
                &k,
                ScalarMulAlgorithm::DoubleAndAdd,
            );
            assert_eq!(fast, reference);
            assert!(curve.is_on_curve(&reference));
        }
    }

    #[test]
    fn zero_scalar_and_infinity_input() {
        let curve = Curve::toy().unwrap();
        let mut rng = rand::rngs::StdRng::seed_from_u64(15);
        let p = curve.random_point(&mut rng);
        assert!(curve
            .scalar_mul(&p, &BigUint::zero(), ScalarMulAlgorithm::Naf)
            .is_infinity());
        assert!(curve
            .scalar_mul(
                &AffinePoint::Infinity,
                &BigUint::from(5u64),
                ScalarMulAlgorithm::Window4
            )
            .is_infinity());
        assert_eq!(curve.scalar_mul_base(&BigUint::one()), *curve.base_point());
    }
}

//! Scalar multiplication.
//!
//! The full 160-bit scalar multiplication is the operation behind Table 3's
//! "160-bit ECC: 9.4 ms" row. Three classic algorithms are provided so the
//! benchmark harness can ablate over them; all accumulate in Jacobian
//! coordinates and convert back to affine once at the end.
//!
//! Every ladder keeps its **addend affine** and adds through the
//! mixed-coordinate formulas ([`Curve::jacobian_add_mixed`], `Z2 = 1`):
//! the double-and-add and NAF ladders add the (already affine) base point
//! or its negation, and the windowed ladder normalizes its precomputed
//! table once ([`Curve::affine_window_table`]) before the main loop. This is the
//! access pattern the platform's 13-multiplication `pa_mixed` sequence
//! prices; the general Jacobian addition ([`Curve::jacobian_add`]) remains
//! the fallback for operands that are not in normalized form.
//!
//! Doublings go through [`Curve::jacobian_double`], which on `a = -3`
//! curves (the reproduction curve included) dispatches to the shortened
//! [`Curve::jacobian_double_fast`] formulas — the access pattern the
//! platform's 8-multiplication `ecc_pd_fast` sequence prices.

use bignum::BigUint;

use crate::curve::Curve;
use crate::point::{AffinePoint, JacobianPoint};

/// Scalar-multiplication algorithm selector.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum ScalarMulAlgorithm {
    /// Left-to-right double-and-add (one PA per set bit).
    DoubleAndAdd,
    /// Signed-digit non-adjacent form (PA on roughly one third of the digits).
    Naf,
    /// Fixed 4-bit windows with a precomputed table.
    Window4,
}

impl Curve {
    /// Computes `k · point` with the selected algorithm.
    ///
    /// On 256-bit curves every algorithm runs on the stack-allocated fixed
    /// backend ([`Curve::fixed_backend`]): double-and-add and NAF map to
    /// their fixed ladders, and `Window4` maps to the cached fixed-base
    /// comb for the curve's base point (or a per-call batch-normalized
    /// window table for arbitrary points). All results are bit-identical
    /// to the heap ladders ([`Curve::scalar_mul_reference`] pins this):
    /// the fixed backend shares the Montgomery radix, and the affine
    /// coordinates of `k · point` are unique whatever ladder computed
    /// them.
    pub fn scalar_mul(
        &self,
        point: &AffinePoint,
        k: &BigUint,
        algorithm: ScalarMulAlgorithm,
    ) -> AffinePoint {
        if k.is_zero() || point.is_infinity() {
            return AffinePoint::Infinity;
        }
        if let Some(result) = self.fixed_scalar_mul_with(point, k, algorithm) {
            return result;
        }
        self.scalar_mul_reference(point, k, algorithm)
    }

    /// Computes `k · point` on the heap (`BigUint`) ladder unconditionally
    /// — the pre-fixed-backend behaviour, kept as the differential baseline
    /// for tests and the `fixed_vs_heap` benchmark. The whole ladder
    /// (formulas *and* single field products) runs on a
    /// [`Curve::heap_only`] twin, so the baseline stays honest now that
    /// [`field::FpContext::mul`] itself routes 256-bit products through
    /// the fixed backend. [`Curve::scalar_mul`] is the fast path; results
    /// are identical.
    pub fn scalar_mul_reference(
        &self,
        point: &AffinePoint,
        k: &BigUint,
        algorithm: ScalarMulAlgorithm,
    ) -> AffinePoint {
        if k.is_zero() || point.is_infinity() {
            return AffinePoint::Infinity;
        }
        let heap = self.heap_only();
        let result = match algorithm {
            ScalarMulAlgorithm::DoubleAndAdd => double_and_add(&heap, point, k),
            ScalarMulAlgorithm::Naf => naf_mul(&heap, point, k),
            ScalarMulAlgorithm::Window4 => window_mul(&heap, point, k, 4),
        };
        heap.to_affine(&result)
    }

    /// Computes `k · base_point` with the default algorithm (double-and-add,
    /// matching the sequence counted by the paper's cycle analysis).
    pub fn scalar_mul_base(&self, k: &BigUint) -> AffinePoint {
        self.scalar_mul(self.base_point(), k, ScalarMulAlgorithm::DoubleAndAdd)
    }

    /// Precomputes the windowed ladder's table `[O, P, 2P, .., (2^w - 1)·P]`
    /// with every entry **normalized to affine form** — the one-time
    /// normalization that lets the main loop use mixed additions only.
    /// Exposed so tests can pin the ladder invariant (every addend is
    /// affine and the correct multiple) without re-deriving the table.
    pub fn affine_window_table(&self, point: &AffinePoint, window: usize) -> Vec<AffinePoint> {
        let table_len = 1usize << window;
        // Build the multiples chain in Jacobian form (the addend stays the
        // affine base point, so every step is a mixed addition), then
        // normalize the whole chain with ONE batched inversion —
        // Montgomery's trick via [`field::FpContext::inv_batch`] — instead
        // of one Fermat inversion per entry. The recorded operation counts
        // are unchanged (one inversion + four multiplications per finite
        // entry, infinity entries free, exactly what the per-entry
        // normalization recorded); only the host-side inversion loops
        // collapse.
        let mut chain = Vec::with_capacity(table_len.saturating_sub(2));
        let mut acc = self.to_jacobian(point);
        for _ in 2..table_len {
            acc = self.jacobian_add_mixed(&acc, point);
            chain.push(acc.clone());
        }
        let fp = self.fp();
        let zs: Vec<_> = chain.iter().map(|p| p.z.clone()).collect();
        let z_invs = fp.inv_batch(&zs);
        let mut table = Vec::with_capacity(table_len);
        table.push(AffinePoint::Infinity);
        table.push(point.clone());
        for (p, z_inv) in chain.iter().zip(z_invs) {
            table.push(match z_inv {
                None => AffinePoint::Infinity,
                Some(z_inv) => {
                    let z_inv2 = fp.square(&z_inv);
                    let z_inv3 = fp.mul(&z_inv2, &z_inv);
                    AffinePoint::Point {
                        x: fp.mul(&p.x, &z_inv2),
                        y: fp.mul(&p.y, &z_inv3),
                    }
                }
            });
        }
        table
    }
}

/// Computes `k · point` with the selected algorithm.
#[deprecated(note = "use the Curve::scalar_mul method")]
pub fn scalar_mul(
    curve: &Curve,
    point: &AffinePoint,
    k: &BigUint,
    algorithm: ScalarMulAlgorithm,
) -> AffinePoint {
    curve.scalar_mul(point, k, algorithm)
}

/// Computes `k · base_point` with the default algorithm.
#[deprecated(note = "use the Curve::scalar_mul_base method")]
pub fn scalar_mul_base(curve: &Curve, k: &BigUint) -> AffinePoint {
    curve.scalar_mul_base(k)
}

fn double_and_add(curve: &Curve, point: &AffinePoint, k: &BigUint) -> JacobianPoint {
    // The addend is the base point itself: already affine, so every
    // addition is a mixed addition.
    let mut acc = curve.to_jacobian(&AffinePoint::Infinity);
    for i in (0..k.bit_len()).rev() {
        acc = curve.jacobian_double(&acc);
        if k.bit(i) {
            acc = curve.jacobian_add_mixed(&acc, point);
        }
    }
    acc
}

/// Computes the non-adjacent form of `k` (least-significant digit first).
///
/// Runs a single O(bits) pass over the bits of `k` with a one-bit carry,
/// never materializing intermediate big integers: at position `i` the
/// remaining value is odd iff `bit(i) + carry` is odd, and the NAF rule
/// `d = 2 - (n mod 4)` (1 → 1, 3 → −1) reads `n mod 4` straight from
/// `bit(i + 1)` and the carry. The `+1` after emitting −1 is exactly a
/// carry into the next position.
pub fn naf_digits(k: &BigUint) -> Vec<i8> {
    let bits = k.bit_len();
    let mut digits = Vec::with_capacity(bits + 1);
    let mut carry = 0u8;
    let mut i = 0;
    while i < bits || carry != 0 {
        let b0 = u8::from(k.bit(i)) + carry;
        if b0 & 1 == 0 {
            // Even: emit 0; a settled carry (b0 == 2) moves up one bit.
            digits.push(0);
            carry = b0 >> 1;
        } else {
            // Odd: n mod 4 = (2·bit(i+1) + b0) mod 4 selects ±1; the −1
            // branch borrows, i.e. carries +1 into bit i + 1.
            let b1 = u8::from(k.bit(i + 1));
            if (2 * b1 + b0) & 3 == 1 {
                digits.push(1);
                carry = 0;
            } else {
                digits.push(-1);
                carry = 1;
            }
        }
        i += 1;
    }
    digits
}

fn naf_mul(curve: &Curve, point: &AffinePoint, k: &BigUint) -> JacobianPoint {
    // Both addends (±P) are affine: negation does not disturb `Z = 1`.
    let digits = naf_digits(k);
    let neg_p = curve.negate(point);
    let mut acc = curve.to_jacobian(&AffinePoint::Infinity);
    for &d in digits.iter().rev() {
        acc = curve.jacobian_double(&acc);
        match d {
            1 => acc = curve.jacobian_add_mixed(&acc, point),
            -1 => acc = curve.jacobian_add_mixed(&acc, &neg_p),
            _ => {}
        }
    }
    acc
}

/// Precomputes the windowed ladder's affine table.
#[deprecated(note = "use the Curve::affine_window_table method")]
pub fn affine_window_table(curve: &Curve, point: &AffinePoint, window: usize) -> Vec<AffinePoint> {
    curve.affine_window_table(point, window)
}

/// Splits `k` into unsigned `window`-bit digits, least-significant digit
/// first — the **shared** recoding used by both the heap and fixed windowed
/// ladders (and the batch window tables), so the two backends can never
/// diverge on digit sequences.
pub fn window_digits(k: &BigUint, window: usize) -> Vec<usize> {
    assert!(window > 0, "window width must be positive");
    let chunks = k.bit_len().div_ceil(window);
    let mut digits = Vec::with_capacity(chunks);
    for chunk in 0..chunks {
        let mut digit = 0usize;
        for b in (0..window).rev() {
            digit = (digit << 1) | k.bit(chunk * window + b) as usize;
        }
        digits.push(digit);
    }
    digits
}

fn window_mul(curve: &Curve, point: &AffinePoint, k: &BigUint, window: usize) -> JacobianPoint {
    let table = curve.affine_window_table(point, window);
    // Process the scalar in w-bit chunks, most significant first.
    let digits = window_digits(k, window);
    let mut acc = curve.to_jacobian(&AffinePoint::Infinity);
    for &digit in digits.iter().rev() {
        for _ in 0..window {
            acc = curve.jacobian_double(&acc);
        }
        if digit != 0 {
            acc = curve.jacobian_add_mixed(&acc, &table[digit]);
        }
    }
    acc
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::SeedableRng;

    #[test]
    fn algorithms_agree_on_toy_curve() {
        let curve = Curve::toy().unwrap();
        let mut rng = rand::rngs::StdRng::seed_from_u64(11);
        for _ in 0..10 {
            let p = curve.random_point(&mut rng);
            let k = BigUint::random_bits(&mut rng, 40);
            let reference = curve.scalar_mul(&p, &k, ScalarMulAlgorithm::DoubleAndAdd);
            assert_eq!(curve.scalar_mul(&p, &k, ScalarMulAlgorithm::Naf), reference);
            assert_eq!(
                curve.scalar_mul(&p, &k, ScalarMulAlgorithm::Window4),
                reference
            );
            assert!(curve.is_on_curve(&reference));
        }
    }

    #[test]
    fn algorithms_agree_on_p160() {
        let curve = Curve::p160_reproduction().unwrap();
        let mut rng = rand::rngs::StdRng::seed_from_u64(12);
        let p = curve.random_point(&mut rng);
        let k = BigUint::random_bits(&mut rng, 160);
        let reference = curve.scalar_mul(&p, &k, ScalarMulAlgorithm::DoubleAndAdd);
        assert_eq!(curve.scalar_mul(&p, &k, ScalarMulAlgorithm::Naf), reference);
        assert_eq!(
            curve.scalar_mul(&p, &k, ScalarMulAlgorithm::Window4),
            reference
        );
        assert!(curve.is_on_curve(&reference));
    }

    #[test]
    fn small_multiples_match_repeated_addition() {
        let curve = Curve::toy().unwrap();
        let mut rng = rand::rngs::StdRng::seed_from_u64(13);
        let p = curve.random_point(&mut rng);
        let mut acc = AffinePoint::Infinity;
        for k in 0u64..20 {
            let expected = acc.clone();
            let got = curve.scalar_mul(&p, &BigUint::from(k), ScalarMulAlgorithm::DoubleAndAdd);
            assert_eq!(got, expected, "k = {k}");
            acc = curve.add(&acc, &p);
        }
    }

    #[test]
    fn scalar_mul_distributes_over_addition_of_scalars() {
        let curve = Curve::toy().unwrap();
        let mut rng = rand::rngs::StdRng::seed_from_u64(14);
        let p = curve.random_point(&mut rng);
        let a = BigUint::from(123u64);
        let b = BigUint::from(456u64);
        let lhs = curve.scalar_mul(&p, &(&a + &b), ScalarMulAlgorithm::DoubleAndAdd);
        let rhs = curve.add(
            &curve.scalar_mul(&p, &a, ScalarMulAlgorithm::DoubleAndAdd),
            &curve.scalar_mul(&p, &b, ScalarMulAlgorithm::DoubleAndAdd),
        );
        assert_eq!(lhs, rhs);
    }

    #[test]
    fn naf_digits_reconstruct_the_scalar() {
        for k in [0u64, 1, 2, 3, 7, 255, 1_000_003, u64::MAX] {
            let digits = naf_digits(&BigUint::from(k));
            let mut value: i128 = 0;
            for (i, &d) in digits.iter().enumerate() {
                value += (d as i128) << i;
            }
            assert_eq!(value, k as i128);
            // Non-adjacency: no two consecutive non-zero digits.
            for w in digits.windows(2) {
                assert!(w[0] == 0 || w[1] == 0, "NAF property violated for {k}");
            }
        }
    }

    #[test]
    fn reference_ladder_runs_heap_only_and_matches_the_fast_path() {
        let curve = Curve::by_name("secp256k1").unwrap();
        assert!(curve.fixed_backend().is_some());
        let heap = curve.heap_only();
        assert!(heap.fixed_backend().is_none());
        assert!(heap.fp().fixed256().is_none());
        let mut rng = rand::rngs::StdRng::seed_from_u64(16);
        for _ in 0..3 {
            let k = BigUint::random_bits(&mut rng, 256);
            let fast = curve.scalar_mul(curve.base_point(), &k, ScalarMulAlgorithm::DoubleAndAdd);
            let reference = curve.scalar_mul_reference(
                curve.base_point(),
                &k,
                ScalarMulAlgorithm::DoubleAndAdd,
            );
            assert_eq!(fast, reference);
            assert!(curve.is_on_curve(&reference));
        }
    }

    #[test]
    fn window_digits_reconstruct_the_scalar() {
        for k in [0u64, 1, 2, 15, 16, 255, 1_000_003, u64::MAX] {
            for window in [1usize, 3, 4, 5] {
                let digits = window_digits(&BigUint::from(k), window);
                let mut value: u128 = 0;
                for (i, &d) in digits.iter().enumerate() {
                    assert!(d < (1 << window));
                    value += (d as u128) << (i * window);
                }
                assert_eq!(value, k as u128, "k = {k}, w = {window}");
            }
        }
    }

    #[test]
    fn fixed_ladders_and_batch_match_heap_reference_on_secp256k1() {
        let curve = Curve::by_name("secp256k1").unwrap();
        assert!(curve.fixed_backend().is_some());
        let mut rng = rand::rngs::StdRng::seed_from_u64(17);
        let base = curve.base_point().clone();
        let other = curve.random_point(&mut rng);
        let order = curve.order().expect("secp256k1 has a known order").clone();
        let scalars = [
            BigUint::one(),
            &order - &BigUint::one(),
            BigUint::random_bits(&mut rng, 256),
        ];
        // Every fixed ladder (D&A, NAF, comb-on-base, window-on-arbitrary)
        // must be bit-identical to the heap reference ladder.
        for point in [&base, &other] {
            for k in &scalars {
                let reference =
                    curve.scalar_mul_reference(point, k, ScalarMulAlgorithm::DoubleAndAdd);
                for alg in [
                    ScalarMulAlgorithm::DoubleAndAdd,
                    ScalarMulAlgorithm::Naf,
                    ScalarMulAlgorithm::Window4,
                ] {
                    assert_eq!(curve.scalar_mul(point, k, alg), reference, "{alg:?}");
                }
            }
        }
        // Batch entry point: mixed bases, edge scalars, an infinity request
        // and a zero scalar — each element identical to the serial path.
        let mut requests: Vec<(AffinePoint, BigUint)> = vec![
            (AffinePoint::Infinity, BigUint::from(5u64)),
            (base.clone(), BigUint::zero()),
        ];
        for k in &scalars {
            requests.push((base.clone(), k.clone()));
            requests.push((other.clone(), k.clone()));
        }
        let batch = curve.scalar_mul_batch(&requests);
        assert_eq!(batch.len(), requests.len());
        for ((point, k), got) in requests.iter().zip(&batch) {
            let serial = curve.scalar_mul(point, k, ScalarMulAlgorithm::DoubleAndAdd);
            assert_eq!(*got, serial);
        }
        assert!(curve.scalar_mul_batch(&[]).is_empty());
    }

    #[test]
    fn zero_scalar_and_infinity_input() {
        let curve = Curve::toy().unwrap();
        let mut rng = rand::rngs::StdRng::seed_from_u64(15);
        let p = curve.random_point(&mut rng);
        assert!(curve
            .scalar_mul(&p, &BigUint::zero(), ScalarMulAlgorithm::Naf)
            .is_infinity());
        assert!(curve
            .scalar_mul(
                &AffinePoint::Infinity,
                &BigUint::from(5u64),
                ScalarMulAlgorithm::Window4
            )
            .is_infinity());
        assert_eq!(curve.scalar_mul_base(&BigUint::one()), *curve.base_point());
    }
}

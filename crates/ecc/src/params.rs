//! Curve parameters as associated data on zero-sized marker types.
//!
//! The paper's coprocessor is *operand-size-parametric* — Tables 2/3 quote
//! cycle counts per bit-length, not per curve — so the curve catalogue is
//! open-ended: any short-Weierstrass curve `y² = x³ + ax + b` over a prime
//! field can flow through the host ladders and the platform cycle model.
//! This module declares the catalogue: the [`WeierstrassParameters`] trait
//! carries a curve's constants as associated data, and each named curve is
//! a zero-sized marker type ([`Secp256k1`], [`P256`], [`P160Reproduction`],
//! [`Toy`]) that [`Curve::from_parameters`] turns into a runtime
//! [`Curve`].
//!
//! Whether `a ≡ -3 (mod p)` is surfaced at the **type level** through
//! [`WeierstrassParameters::A_IS_MINUS_THREE`]: it decides, per curve, the
//! dispatch between the general 10-MM point doubling and the shortened
//! 8-MM `dbl-2001-b` formulas (and between the platform's `ecc_pd` and
//! `ecc_pd_fast` sequences). P-256 has `a = -3`; secp256k1 does not — the
//! pair finally exercises both sides of the dispatch on curves where the
//! distinction matters. The declared flag is validated against the actual
//! coefficient when the curve is built, so a marker type cannot lie.

use bignum::BigUint;

use crate::curve::{Curve, CurveSpec};
use crate::error::EccError;

/// Constants of a short-Weierstrass curve `y² = x³ + ax + b` over a prime
/// field, declared as associated data on a marker type.
///
/// Implementations return fresh [`BigUint`]s (the workspace bignum is
/// heap-allocated, so the constants cannot be `const` items); the values
/// must be canonical residues, i.e. already reduced modulo [`prime`].
///
/// [`prime`]: WeierstrassParameters::prime
pub trait WeierstrassParameters {
    /// Canonical curve name — the key under which the curve is registered
    /// in [`Curve::by_name`].
    const NAME: &'static str;

    /// Canonical operand size in bits — the bit-length the platform cycle
    /// model quotes its Table 2/3 rows at (equal to the prime's bit
    /// length for every registered curve).
    const BITS: usize;

    /// Whether the curve coefficient satisfies `a ≡ -3 (mod p)`, the
    /// precondition of the shortened doubling formulas
    /// ([`Curve::jacobian_double_fast`] and the platform's 8-MM
    /// `ecc_pd_fast` sequence). Declared at the type level so generic
    /// code can dispatch without a runtime conversion; validated against
    /// [`a`](WeierstrassParameters::a) by [`Curve::from_parameters`].
    const A_IS_MINUS_THREE: bool;

    /// The field prime `p`.
    fn prime() -> BigUint;

    /// The coefficient `a`, as a canonical residue mod `p`.
    fn a() -> BigUint;

    /// The coefficient `b`, as a canonical residue mod `p`.
    fn b() -> BigUint;

    /// Affine coordinates `(x, y)` of the generator (base point).
    fn generator() -> (BigUint, BigUint);

    /// The group order annihilating the generator, when known.
    ///
    /// For the standards curves this is the published prime order `n`;
    /// for [`Toy`] it is the exhaustively counted group order; the
    /// reproduction curve's order is not certified (point counting is out
    /// of scope — see DESIGN.md) and returns `None`.
    fn order() -> Option<BigUint>;

    /// The cofactor `h` (`#E(Fp) = h · n`); `1` for every registered
    /// curve.
    fn cofactor() -> BigUint {
        BigUint::one()
    }

    /// The parameters bundled as a [`CurveSpec`], ready for
    /// [`Curve::from_spec`].
    fn spec() -> CurveSpec {
        let (gx, gy) = Self::generator();
        CurveSpec::new(Self::prime(), Self::a(), Self::b(), gx, gy)
            .name(Self::NAME)
            .bits(Self::BITS)
            .cofactor(Self::cofactor())
            .maybe_order(Self::order())
    }
}

/// secp256k1 (SEC 2): `y² = x³ + 7` over `p = 2²⁵⁶ - 2³² - 977`.
///
/// The curve behind Bitcoin/Ethereum ECDSA. `a = 0`, so its ladder runs
/// the **general** doubling sequence — the curve that keeps the
/// `ecc_pd`/`ecc_pd_fast` dispatch honest from the other side.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Secp256k1;

impl WeierstrassParameters for Secp256k1 {
    const NAME: &'static str = "secp256k1";
    const BITS: usize = 256;
    const A_IS_MINUS_THREE: bool = false;

    fn prime() -> BigUint {
        BigUint::from_hex("fffffffffffffffffffffffffffffffffffffffffffffffffffffffefffffc2f")
            .expect("valid hex constant")
    }

    fn a() -> BigUint {
        BigUint::zero()
    }

    fn b() -> BigUint {
        BigUint::from(7u64)
    }

    fn generator() -> (BigUint, BigUint) {
        (
            BigUint::from_hex("79be667ef9dcbbac55a06295ce870b07029bfcdb2dce28d959f2815b16f81798")
                .expect("valid hex constant"),
            BigUint::from_hex("483ada7726a3c4655da4fbfc0e1108a8fd17b448a68554199c47d08ffb10d4b8")
                .expect("valid hex constant"),
        )
    }

    fn order() -> Option<BigUint> {
        Some(
            BigUint::from_hex("fffffffffffffffffffffffffffffffebaaedce6af48a03bbfd25e8cd0364141")
                .expect("valid hex constant"),
        )
    }
}

/// NIST P-256 / secp256r1 (FIPS 186-4): the TLS/ECDSA workhorse curve.
///
/// `a = -3`, so its ladder runs the shortened fast doubling — the
/// standards curve the paper's `a = -3` optimisation actually applies to.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct P256;

impl WeierstrassParameters for P256 {
    const NAME: &'static str = "p256";
    const BITS: usize = 256;
    const A_IS_MINUS_THREE: bool = true;

    fn prime() -> BigUint {
        BigUint::from_hex("ffffffff00000001000000000000000000000000ffffffffffffffffffffffff")
            .expect("valid hex constant")
    }

    fn a() -> BigUint {
        &Self::prime() - &BigUint::from(3u64)
    }

    fn b() -> BigUint {
        BigUint::from_hex("5ac635d8aa3a93e7b3ebbd55769886bc651d06b0cc53b0f63bce3c3e27d2604b")
            .expect("valid hex constant")
    }

    fn generator() -> (BigUint, BigUint) {
        (
            BigUint::from_hex("6b17d1f2e12c4247f8bce6e563a440f277037d812deb33a0f4a13945d898c296")
                .expect("valid hex constant"),
            BigUint::from_hex("4fe342e2fe1a7f9b8ee7eb4a7c0f9e162bce33576b315ececbb6406837bf51f5")
                .expect("valid hex constant"),
        )
    }

    fn order() -> Option<BigUint> {
        Some(
            BigUint::from_hex("ffffffff00000000ffffffffffffffffbce6faada7179e84f3b9cac2fc632551")
                .expect("valid hex constant"),
        )
    }
}

/// The paper's 160-bit reproduction curve: `y² = x³ - 3x + 7` over
/// `p = 2¹⁶⁰ - 2³¹ - 1`.
///
/// A locally generated curve at the operand size of the paper's "160-bit
/// ECC" rows; its group order is *not* certified (the reproduction only
/// needs field and curve arithmetic at this bit-length — see DESIGN.md),
/// so [`order`](WeierstrassParameters::order) returns `None`.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct P160Reproduction;

impl WeierstrassParameters for P160Reproduction {
    const NAME: &'static str = "p160-reproduction";
    const BITS: usize = 160;
    const A_IS_MINUS_THREE: bool = true;

    fn prime() -> BigUint {
        BigUint::from_hex("ffffffffffffffffffffffffffffffff7fffffff").expect("valid hex constant")
    }

    fn a() -> BigUint {
        &Self::prime() - &BigUint::from(3u64)
    }

    fn b() -> BigUint {
        BigUint::from(7u64)
    }

    fn generator() -> (BigUint, BigUint) {
        // The first point found by the original constructor's scan over
        // x = 1, 2, ...: x = 2 is the smallest x whose `x³ - 3x + 7` is a
        // quadratic residue, and the even root happens to be `p - 3`.
        // (A unit test pins this against a fresh scan.)
        (
            BigUint::from(2u64),
            BigUint::from_hex("ffffffffffffffffffffffffffffffff7ffffffc")
                .expect("valid hex constant"),
        )
    }

    fn order() -> Option<BigUint> {
        None
    }
}

/// The tiny validation curve: `y² = x³ + x + 6` over `p = 1009`, with its
/// group order (1020) certified by exhaustive point counting.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Toy;

impl WeierstrassParameters for Toy {
    const NAME: &'static str = "toy-1009";
    const BITS: usize = 10;
    const A_IS_MINUS_THREE: bool = false;

    fn prime() -> BigUint {
        BigUint::from(1009u64)
    }

    fn a() -> BigUint {
        BigUint::one()
    }

    fn b() -> BigUint {
        BigUint::from(6u64)
    }

    fn generator() -> (BigUint, BigUint) {
        // First point of the original constructor's scan (x = 1, even y).
        (BigUint::from(1u64), BigUint::from(878u64))
    }

    fn order() -> Option<BigUint> {
        // Exhaustive count over F_1009; pinned against a fresh count by a
        // unit test in `curve.rs`.
        Some(BigUint::from(1020u64))
    }
}

impl Curve {
    /// Builds the [`Curve`] described by the marker type `E`.
    ///
    /// This is the single construction path for named curves: the
    /// constants come from the trait, the validation from
    /// [`Curve::from_spec`], plus one trait-specific check — the declared
    /// [`A_IS_MINUS_THREE`](WeierstrassParameters::A_IS_MINUS_THREE) flag
    /// must agree with the actual coefficient.
    ///
    /// ```
    /// use ecc::prelude::*;
    ///
    /// let p256 = Curve::from_parameters::<P256>()?;
    /// assert!(p256.a_is_minus_three());
    /// let secp = Curve::from_parameters::<Secp256k1>()?;
    /// assert!(!secp.a_is_minus_three());
    /// # Ok::<(), EccError>(())
    /// ```
    ///
    /// # Errors
    ///
    /// Returns [`EccError::InvalidParameters`] if the marker's constants
    /// fail validation (see [`Curve::from_spec`]) or its declared
    /// `A_IS_MINUS_THREE` flag disagrees with `a mod p`.
    pub fn from_parameters<E: WeierstrassParameters>() -> Result<Curve, EccError> {
        let curve = Curve::from_spec(E::spec())?;
        if curve.a_is_minus_three() != E::A_IS_MINUS_THREE {
            return Err(EccError::InvalidParameters {
                field: "A_IS_MINUS_THREE",
                reason: "declared flag disagrees with the coefficient a mod p",
            });
        }
        Ok(curve)
    }

    /// Looks a registered curve up by name (the registry behind the
    /// marker types), accepting the common aliases for each curve
    /// (`"secp256r1"`/`"prime256v1"` for P-256, `"toy"` for the toy
    /// curve); matching is case-insensitive.
    ///
    /// ```
    /// use ecc::prelude::*;
    ///
    /// let curve = Curve::by_name("secp256k1")?;
    /// assert_eq!(curve.name(), "secp256k1");
    /// assert!(matches!(
    ///     Curve::by_name("curve25519"),
    ///     Err(EccError::UnknownCurve(_))
    /// ));
    /// # Ok::<(), EccError>(())
    /// ```
    ///
    /// # Errors
    ///
    /// Returns [`EccError::UnknownCurve`] for a name that is not
    /// registered, and propagates [`Curve::from_parameters`] errors
    /// (impossible for the built-in markers).
    pub fn by_name(name: &str) -> Result<Curve, EccError> {
        match name.to_ascii_lowercase().as_str() {
            "secp256k1" => Curve::from_parameters::<Secp256k1>(),
            "p256" | "p-256" | "secp256r1" | "prime256v1" => Curve::from_parameters::<P256>(),
            "p160-reproduction" | "p160" => Curve::from_parameters::<P160Reproduction>(),
            "toy-1009" | "toy" => Curve::from_parameters::<Toy>(),
            _ => Err(EccError::UnknownCurve(name.to_string())),
        }
    }

    /// Canonical names of every registered curve, in registry order —
    /// the valid inputs to [`Curve::by_name`] (aliases excluded). Tests
    /// iterate this list to run trait-level invariants over the whole
    /// catalogue.
    pub fn registered_names() -> &'static [&'static str] {
        &["secp256k1", "p256", "p160-reproduction", "toy-1009"]
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::SeedableRng;

    #[test]
    fn registry_resolves_every_canonical_name_and_alias() {
        for name in Curve::registered_names() {
            let curve = Curve::by_name(name).expect("registered curve builds");
            assert_eq!(curve.name(), *name);
        }
        for (alias, canonical) in [
            ("SECP256K1", "secp256k1"),
            ("P-256", "p256"),
            ("secp256r1", "p256"),
            ("prime256v1", "p256"),
            ("p160", "p160-reproduction"),
            ("toy", "toy-1009"),
        ] {
            assert_eq!(Curve::by_name(alias).expect("alias").name(), canonical);
        }
        match Curve::by_name("brainpoolP256r1") {
            Err(EccError::UnknownCurve(n)) => assert_eq!(n, "brainpoolP256r1"),
            other => panic!("expected UnknownCurve, got {other:?}"),
        }
    }

    #[test]
    fn declared_bits_match_the_field() {
        // The canonical operand size is the prime's bit length for every
        // registered curve (the platform quotes its rows at that size).
        assert_eq!(Secp256k1::prime().bit_len(), Secp256k1::BITS);
        assert_eq!(P256::prime().bit_len(), P256::BITS);
        assert_eq!(P160Reproduction::prime().bit_len(), P160Reproduction::BITS);
        assert_eq!(Toy::prime().bit_len(), Toy::BITS);
    }

    #[test]
    fn named_primes_are_prime() {
        let mut rng = rand::rngs::StdRng::seed_from_u64(31);
        for p in [Secp256k1::prime(), P256::prime(), Toy::prime()] {
            assert!(
                bignum::is_prime(&p, &mut rng),
                "{} must be prime",
                p.to_hex()
            );
        }
    }

    #[test]
    fn a_minus_three_flags_cannot_lie() {
        // A marker whose declared flag disagrees with its coefficient is
        // rejected at construction.
        struct LyingP256;
        impl WeierstrassParameters for LyingP256 {
            const NAME: &'static str = "lying-p256";
            const BITS: usize = 256;
            const A_IS_MINUS_THREE: bool = false; // wrong: P-256 has a = -3
            fn prime() -> BigUint {
                P256::prime()
            }
            fn a() -> BigUint {
                P256::a()
            }
            fn b() -> BigUint {
                P256::b()
            }
            fn generator() -> (BigUint, BigUint) {
                P256::generator()
            }
            fn order() -> Option<BigUint> {
                P256::order()
            }
        }
        match Curve::from_parameters::<LyingP256>() {
            Err(EccError::InvalidParameters { field, .. }) => {
                assert_eq!(field, "A_IS_MINUS_THREE");
            }
            other => panic!("expected InvalidParameters, got {other:?}"),
        }
    }

    #[test]
    fn cofactors_are_one() {
        for name in Curve::registered_names() {
            let curve = Curve::by_name(name).unwrap();
            assert!(curve.cofactor().is_one(), "{name}");
        }
    }
}

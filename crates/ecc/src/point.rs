//! Point representations: affine and Jacobian projective coordinates.

use field::{FpContext, FpElement};

/// A point on a short-Weierstrass curve in affine coordinates.
#[derive(Clone, PartialEq, Eq, Debug)]
pub enum AffinePoint {
    /// The point at infinity (group identity).
    Infinity,
    /// A finite point `(x, y)`.
    Point {
        /// Affine x-coordinate.
        x: FpElement,
        /// Affine y-coordinate.
        y: FpElement,
    },
}

impl AffinePoint {
    /// Constructs a finite point from its coordinates (no curve check; see
    /// [`Curve::lift`](crate::Curve::lift) for a validated constructor).
    pub fn new(x: FpElement, y: FpElement) -> Self {
        AffinePoint::Point { x, y }
    }

    /// Returns `true` for the point at infinity.
    pub fn is_infinity(&self) -> bool {
        matches!(self, AffinePoint::Infinity)
    }

    /// The affine coordinates, or `None` for the point at infinity.
    pub fn coordinates(&self) -> Option<(&FpElement, &FpElement)> {
        match self {
            AffinePoint::Infinity => None,
            AffinePoint::Point { x, y } => Some((x, y)),
        }
    }
}

/// A point in Jacobian projective coordinates `(X : Y : Z)` representing the
/// affine point `(X/Z², Y/Z³)`; `Z = 0` encodes the point at infinity.
///
/// Jacobian coordinates avoid the per-operation modular inversion, which is
/// what the paper's coprocessor point-addition/doubling sequences assume.
#[derive(Clone, Debug)]
pub struct JacobianPoint {
    /// Projective X coordinate.
    pub x: FpElement,
    /// Projective Y coordinate.
    pub y: FpElement,
    /// Projective Z coordinate (`0` for the point at infinity).
    pub z: FpElement,
}

impl JacobianPoint {
    /// Returns `true` for the point at infinity.
    pub fn is_infinity(&self) -> bool {
        self.z.is_zero()
    }

    /// Returns `true` when this point is in normalized (affine) form,
    /// `Z = 1` — the representation the mixed-coordinate addition
    /// (`Curve::jacobian_add_mixed` and the platform's `pa_mixed`
    /// sequence) requires of its second operand. The scalar ladder
    /// maintains this invariant for its addend by construction.
    pub fn is_normalized(&self, fp: &FpContext) -> bool {
        self.z == fp.one()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use bignum::BigUint;
    use field::FpContext;

    #[test]
    fn affine_accessors() {
        let fp = FpContext::new(&BigUint::from(97u64)).unwrap();
        let p = AffinePoint::new(fp.from_u64(3), fp.from_u64(6));
        assert!(!p.is_infinity());
        let (x, y) = p.coordinates().unwrap();
        assert_eq!(x, &fp.from_u64(3));
        assert_eq!(y, &fp.from_u64(6));
        assert!(AffinePoint::Infinity.is_infinity());
        assert!(AffinePoint::Infinity.coordinates().is_none());
    }

    #[test]
    fn jacobian_infinity_flag() {
        let fp = FpContext::new(&BigUint::from(97u64)).unwrap();
        let inf = JacobianPoint {
            x: fp.one(),
            y: fp.one(),
            z: fp.zero(),
        };
        assert!(inf.is_infinity());
        let finite = JacobianPoint {
            x: fp.one(),
            y: fp.one(),
            z: fp.one(),
        };
        assert!(!finite.is_infinity());
    }
}

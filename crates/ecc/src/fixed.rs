//! Stack-allocated scalar-multiplication backend for 256-bit curves.
//!
//! The named 256-bit curves ([`crate::Secp256k1`], [`crate::P256`]) spend
//! their host time in Jacobian ladder steps whose field arithmetic all
//! funnels through heap-allocated [`bignum::BigUint`] residues. This module
//! re-runs the *same* formulas — the general and `a = -3` "dbl-2001-b"
//! doublings and the mixed-coordinate addition of
//! [`crate::Curve::jacobian_double`] / [`Curve::jacobian_add_mixed`] — on
//! [`bignum::fixed::Uint<4>`] stack words, with zero heap allocation from
//! the first doubling through the final Fermat inversion.
//!
//! Because the fixed backend shares the Montgomery radix `R = 2^256` with
//! the field's heap parameters (see [`field::FpContext::fixed256`]), every
//! intermediate here is the *bit-identical* Montgomery residue the heap
//! ladder would have produced; the differential suites in `tests/` pin
//! this.
//!
//! [`FixedCurve`] is constructed by [`Curve`] itself during
//! [`Curve::from_spec`] — there is no public constructor — and
//! [`Curve::scalar_mul`] dispatches to it automatically, so callers keep
//! the typed [`Curve`] API. [`Curve::fixed_backend`] exposes the backend
//! for benchmarks and differential tests.

use std::sync::{Arc, OnceLock};

use bignum::fixed::{add_mod, neg_mod, sub_mod, MontgomeryContext, Uint};
use bignum::BigUint;
use field::FpElement;

use crate::curve::Curve;
use crate::point::AffinePoint;
use crate::scalar::{naf_digits, window_digits, ScalarMulAlgorithm};

/// A 256-bit residue in Montgomery form on the fixed backend.
type Residue = Uint<4>;

/// Comb tooth count: each ladder step assembles one bit from each of four
/// equally spaced scalar positions.
const COMB_TEETH: usize = 4;
/// Distance between comb teeth — also the number of doublings in the comb
/// ladder (vs 256 in double-and-add).
const COMB_SPACING: usize = 64;

/// A Lim–Lee fixed-base comb table: the 15 non-trivial sums of
/// `{P, 2^64·P, 2^128·P, 2^192·P}`, batch-normalized to affine form so the
/// comb ladder adds through the mixed-coordinate formulas only.
#[derive(Clone, Debug)]
struct CombTable {
    /// The base point this table was built for (Montgomery form).
    x: Residue,
    y: Residue,
    /// `entries[d - 1]` holds `sum_t (d >> t & 1) · 2^(64t) · P`.
    entries: [(Residue, Residue); (1 << COMB_TEETH) - 1],
}

/// A Jacobian point on the fixed backend; `z = 0` encodes infinity (with
/// `x = y = 1` in Montgomery form, mirroring the heap convention).
#[derive(Clone, Copy)]
struct JPoint {
    x: Residue,
    y: Residue,
    z: Residue,
}

/// The fixed-width ladder backend of a 256-bit [`Curve`].
///
/// Holds the field's shared-radix [`MontgomeryContext`] plus the curve
/// constants the doubling formulas need, all as stack values. Built by
/// [`Curve::from_spec`] exactly when the field has a
/// [`field::FpContext::fixed256`] backend; retrieved via
/// [`Curve::fixed_backend`].
#[derive(Clone, Debug)]
pub struct FixedCurve {
    ctx: MontgomeryContext<4>,
    /// The coefficient `a` in Montgomery form.
    a_mont: Residue,
    /// The constant 3 in Montgomery form (the fast doubling's tangent
    /// factor).
    three_mont: Residue,
    a_is_minus_three: bool,
    /// Lazily built fixed-base comb table, shared across clones. Populated
    /// by the first [`FixedCurve::scalar_mul_comb`] call (the curve's base
    /// point, via [`Curve::scalar_mul`]'s `Window4` dispatch); `None`
    /// inside means construction degenerated (an entry hit infinity) and
    /// the comb path is permanently disabled for this curve.
    comb: Arc<OnceLock<Option<CombTable>>>,
}

impl FixedCurve {
    /// Builds the backend from the field context and curve coefficient.
    /// Crate-internal: curves construct this in [`Curve::from_spec`].
    pub(crate) fn new(ctx: MontgomeryContext<4>, a: &FpElement, a_is_minus_three: bool) -> Self {
        let a_mont = Residue::from_biguint(a.mont_repr())
            .expect("Montgomery residue of a 256-bit field fits in 4 limbs");
        let three_mont = ctx.to_mont(&Uint::from_u64(3));
        FixedCurve {
            ctx,
            a_mont,
            three_mont,
            a_is_minus_three,
            comb: Arc::new(OnceLock::new()),
        }
    }

    /// The fixed-width Montgomery context this backend computes in (shared
    /// radix with the curve's [`field::FpContext`]).
    pub fn context(&self) -> &MontgomeryContext<4> {
        &self.ctx
    }

    /// Whether the ladder uses the shortened `a = -3` doubling.
    pub fn a_is_minus_three(&self) -> bool {
        self.a_is_minus_three
    }

    #[inline]
    fn mul(&self, a: &Residue, b: &Residue) -> Residue {
        self.ctx.mont_mul(a, b)
    }

    #[inline]
    fn sqr(&self, a: &Residue) -> Residue {
        self.ctx.mont_mul(a, a)
    }

    #[inline]
    fn add(&self, a: &Residue, b: &Residue) -> Residue {
        add_mod(a, b, self.ctx.modulus())
    }

    #[inline]
    fn sub(&self, a: &Residue, b: &Residue) -> Residue {
        sub_mod(a, b, self.ctx.modulus())
    }

    #[inline]
    fn dbl(&self, a: &Residue) -> Residue {
        self.add(a, a)
    }

    fn infinity(&self) -> JPoint {
        JPoint {
            x: self.ctx.one_mont(),
            y: self.ctx.one_mont(),
            z: Residue::ZERO,
        }
    }

    /// Jacobian doubling, mirroring [`Curve::jacobian_double`]'s dispatch
    /// and formulas exactly.
    fn jacobian_double(&self, p: &JPoint) -> JPoint {
        if self.a_is_minus_three {
            return self.jacobian_double_fast(p);
        }
        if p.z.is_zero() || p.y.is_zero() {
            return self.infinity();
        }
        let a_sq = self.sqr(&p.x); // X1²
        let b_sq = self.sqr(&p.y); // Y1²
        let c = self.sqr(&b_sq); // Y1⁴
                                 // D = 2((X1 + B)² - A - C)
        let d = self.dbl(&self.sub(&self.sub(&self.sqr(&self.add(&p.x, &b_sq)), &a_sq), &c));
        // E = 3A + a·Z1⁴
        let z2 = self.sqr(&p.z);
        let e = self.add(
            &self.add(&self.dbl(&a_sq), &a_sq),
            &self.mul(&self.a_mont, &self.sqr(&z2)),
        );
        let f = self.sqr(&e);
        let x3 = self.sub(&f, &self.dbl(&d));
        let eight_c = self.dbl(&self.dbl(&self.dbl(&c)));
        let y3 = self.sub(&self.mul(&e, &self.sub(&d, &x3)), &eight_c);
        let z3 = self.dbl(&self.mul(&p.y, &p.z));
        JPoint {
            x: x3,
            y: y3,
            z: z3,
        }
    }

    /// Shortened `a = -3` doubling ("dbl-2001-b"), mirroring
    /// [`Curve::jacobian_double_fast`].
    fn jacobian_double_fast(&self, p: &JPoint) -> JPoint {
        debug_assert!(self.a_is_minus_three, "fast doubling requires a = -3");
        if p.z.is_zero() || p.y.is_zero() {
            return self.infinity();
        }
        let delta = self.sqr(&p.z); // Z1²
        let gamma = self.sqr(&p.y); // Y1²
        let beta = self.mul(&p.x, &gamma); // X1·Y1²
        let alpha = self.mul(
            &self.three_mont,
            &self.mul(&self.sub(&p.x, &delta), &self.add(&p.x, &delta)),
        );
        let beta4 = self.dbl(&self.dbl(&beta));
        let x3 = self.sub(&self.sqr(&alpha), &self.dbl(&beta4));
        let y3 = self.sub(
            &self.mul(&alpha, &self.sub(&beta4, &x3)),
            &self.dbl(&self.dbl(&self.dbl(&self.sqr(&gamma)))),
        );
        let z3 = self.dbl(&self.mul(&p.y, &p.z));
        JPoint {
            x: x3,
            y: y3,
            z: z3,
        }
    }

    /// Mixed-coordinate addition of an affine addend (`Z2 = 1`), mirroring
    /// [`Curve::jacobian_add_mixed`] including its degenerate cases.
    fn jacobian_add_mixed(&self, p: &JPoint, x2: &Residue, y2: &Residue) -> JPoint {
        if p.z.is_zero() {
            return JPoint {
                x: *x2,
                y: *y2,
                z: self.ctx.one_mont(),
            };
        }
        let z1z1 = self.sqr(&p.z);
        let u2 = self.mul(x2, &z1z1);
        let s2 = self.mul(y2, &self.mul(&p.z, &z1z1));
        if u2 == p.x {
            if s2 == p.y {
                return self.jacobian_double(p);
            }
            return self.infinity();
        }
        let h = self.sub(&u2, &p.x);
        let i = self.sqr(&self.dbl(&h));
        let j = self.mul(&h, &i);
        let r = self.dbl(&self.sub(&s2, &p.y));
        let v = self.mul(&p.x, &i);
        let x3 = self.sub(&self.sub(&self.sqr(&r), &j), &self.dbl(&v));
        let y3 = self.sub(
            &self.mul(&r, &self.sub(&v, &x3)),
            &self.dbl(&self.mul(&p.y, &j)),
        );
        let z3 = self.dbl(&self.mul(&p.z, &h));
        JPoint {
            x: x3,
            y: y3,
            z: z3,
        }
    }

    /// Normalizes back to affine form (one Fermat inversion, still on the
    /// stack); `None` is the point at infinity.
    fn to_affine(&self, p: &JPoint) -> Option<(Residue, Residue)> {
        if p.z.is_zero() {
            return None;
        }
        let z_inv = self
            .ctx
            .mont_inv_prime(&p.z)
            .expect("finite point has z != 0");
        let z_inv2 = self.sqr(&z_inv);
        let z_inv3 = self.mul(&z_inv2, &z_inv);
        Some((self.mul(&p.x, &z_inv2), self.mul(&p.y, &z_inv3)))
    }

    /// Left-to-right double-and-add ladder on Montgomery-form affine
    /// coordinates, mirroring the heap `double_and_add` step for step.
    /// `None` is the point at infinity. Performs no heap allocation.
    pub fn scalar_mul(
        &self,
        x_mont: &Residue,
        y_mont: &Residue,
        k: &Residue,
    ) -> Option<(Residue, Residue)> {
        let mut acc = self.infinity();
        for i in (0..k.bit_len()).rev() {
            acc = self.jacobian_double(&acc);
            if k.bit(i) {
                acc = self.jacobian_add_mixed(&acc, x_mont, y_mont);
            }
        }
        self.to_affine(&acc)
    }

    /// The signed-digit NAF ladder accumulated in Jacobian form; both
    /// addends (`±P`) are affine, so every addition is a mixed addition.
    /// Uses the **shared** recoding ([`crate::scalar::naf_digits`]) so the
    /// fixed and heap ladders can never diverge on digit sequences.
    fn naf_ladder(&self, x_mont: &Residue, y_mont: &Residue, k: &Residue) -> JPoint {
        let digits = naf_digits(&k.to_biguint());
        let neg_y = neg_mod(y_mont, self.ctx.modulus());
        let mut acc = self.infinity();
        for &d in digits.iter().rev() {
            acc = self.jacobian_double(&acc);
            match d {
                1 => acc = self.jacobian_add_mixed(&acc, x_mont, y_mont),
                -1 => acc = self.jacobian_add_mixed(&acc, x_mont, &neg_y),
                _ => {}
            }
        }
        acc
    }

    /// Signed-digit NAF ladder: point additions on roughly one third of
    /// the digits instead of one half. Result bit-identical to
    /// [`FixedCurve::scalar_mul`] (affine coordinates of `k·P` are unique).
    pub fn scalar_mul_naf(
        &self,
        x_mont: &Residue,
        y_mont: &Residue,
        k: &Residue,
    ) -> Option<(Residue, Residue)> {
        self.to_affine(&self.naf_ladder(x_mont, y_mont, k))
    }

    /// Normalizes a slice of *finite* Jacobian points to affine form with
    /// **one** batched inversion (Montgomery's trick: one Fermat inversion
    /// plus `3(n-1)` multiplications) instead of one inversion per point.
    /// Returns `None` if any point is at infinity — callers fall back to a
    /// table-free ladder in that (degenerate, large-prime-order-impossible)
    /// case rather than guessing.
    fn batch_to_affine(&self, points: &[JPoint]) -> Option<Vec<(Residue, Residue)>> {
        if points.iter().any(|p| p.z.is_zero()) {
            return None;
        }
        let mut zs: Vec<Residue> = points.iter().map(|p| p.z).collect();
        let mut scratch = vec![Residue::ZERO; zs.len()];
        if !self.ctx.mont_inv_batch(&mut zs, &mut scratch) {
            return None;
        }
        Some(
            points
                .iter()
                .zip(&zs)
                .map(|(p, z_inv)| {
                    let z_inv2 = self.sqr(z_inv);
                    (
                        self.mul(&p.x, &z_inv2),
                        self.mul(&p.y, &self.mul(&z_inv2, z_inv)),
                    )
                })
                .collect(),
        )
    }

    /// The windowed ladder's odd-and-even multiples table
    /// `[P, 2P, .., (2^w - 1)·P]` as affine pairs (index `d` at `d - 1`),
    /// batch-normalized. `None` on a degenerate (infinity-entry) chain.
    fn affine_table(
        &self,
        x_mont: &Residue,
        y_mont: &Residue,
        window: usize,
    ) -> Option<Vec<(Residue, Residue)>> {
        let len = (1usize << window) - 1;
        let mut chain = Vec::with_capacity(len);
        chain.push(JPoint {
            x: *x_mont,
            y: *y_mont,
            z: self.ctx.one_mont(),
        });
        for i in 1..len {
            chain.push(self.jacobian_add_mixed(&chain[i - 1], x_mont, y_mont));
        }
        self.batch_to_affine(&chain)
    }

    /// Fixed 4-bit-window ladder with a per-call batch-normalized table:
    /// one table inversion total (vs 14 per-entry inversions) and one
    /// mixed addition per non-zero window. Result bit-identical to
    /// [`FixedCurve::scalar_mul`]. Uses the shared window recoding
    /// ([`crate::scalar::window_digits`]).
    pub fn scalar_mul_window(
        &self,
        x_mont: &Residue,
        y_mont: &Residue,
        k: &Residue,
        window: usize,
    ) -> Option<(Residue, Residue)> {
        let Some(table) = self.affine_table(x_mont, y_mont, window) else {
            // Degenerate table (small-order point): the plain ladder needs
            // no precomputed multiples and still computes k·P exactly.
            return self.scalar_mul(x_mont, y_mont, k);
        };
        let digits = window_digits(&k.to_biguint(), window);
        let mut acc = self.infinity();
        for &digit in digits.iter().rev() {
            for _ in 0..window {
                acc = self.jacobian_double(&acc);
            }
            if digit != 0 {
                let (ex, ey) = table[digit - 1];
                acc = self.jacobian_add_mixed(&acc, &ex, &ey);
            }
        }
        self.to_affine(&acc)
    }

    /// Builds the Lim–Lee comb table for `P = (x, y)`: affine strides
    /// `2^(64t)·P` (192 doublings, batch-normalized), then the 15 subset
    /// sums, batch-normalized again — two inversions total for the whole
    /// table. `None` if any entry degenerates to infinity.
    fn build_comb(&self, x_mont: &Residue, y_mont: &Residue) -> Option<CombTable> {
        let mut strides = [(*x_mont, *y_mont); COMB_TEETH];
        let mut cur = JPoint {
            x: *x_mont,
            y: *y_mont,
            z: self.ctx.one_mont(),
        };
        let mut stride_chain = Vec::with_capacity(COMB_TEETH - 1);
        for _ in 1..COMB_TEETH {
            for _ in 0..COMB_SPACING {
                cur = self.jacobian_double(&cur);
            }
            stride_chain.push(cur);
        }
        for (slot, affine) in strides
            .iter_mut()
            .skip(1)
            .zip(self.batch_to_affine(&stride_chain)?)
        {
            *slot = affine;
        }
        let mut entry_chain = Vec::with_capacity((1 << COMB_TEETH) - 1);
        for d in 1usize..(1 << COMB_TEETH) {
            let mut acc = self.infinity();
            for (t, (sx, sy)) in strides.iter().enumerate() {
                if d & (1 << t) != 0 {
                    acc = self.jacobian_add_mixed(&acc, sx, sy);
                }
            }
            entry_chain.push(acc);
        }
        let normalized = self.batch_to_affine(&entry_chain)?;
        let mut entries = [(Residue::ZERO, Residue::ZERO); (1 << COMB_TEETH) - 1];
        for (slot, affine) in entries.iter_mut().zip(normalized) {
            *slot = affine;
        }
        Some(CombTable {
            x: *x_mont,
            y: *y_mont,
            entries,
        })
    }

    /// The comb ladder over a built table: 63 doublings plus at most 64
    /// mixed additions for a 256-bit scalar (vs ~256 + ~128 for
    /// double-and-add).
    fn comb_ladder(&self, table: &CombTable, k: &Residue) -> JPoint {
        let mut acc = self.infinity();
        for i in (0..COMB_SPACING).rev() {
            acc = self.jacobian_double(&acc);
            let mut digit = 0usize;
            for t in 0..COMB_TEETH {
                digit |= (k.bit(t * COMB_SPACING + i) as usize) << t;
            }
            if digit != 0 {
                let (ex, ey) = table.entries[digit - 1];
                acc = self.jacobian_add_mixed(&acc, &ex, &ey);
            }
        }
        acc
    }

    /// Fixed-base comb (Lim–Lee) ladder: the fastest repeated-base path,
    /// caching its two-inversion table on first use. [`Curve::scalar_mul`]
    /// routes `Window4` requests on the curve's base point here. A call
    /// with a *different* point than the cached one builds a throwaway
    /// table (correct, but pays construction every call). Result
    /// bit-identical to [`FixedCurve::scalar_mul`].
    pub fn scalar_mul_comb(
        &self,
        x_mont: &Residue,
        y_mont: &Residue,
        k: &Residue,
    ) -> Option<(Residue, Residue)> {
        let cached = self.comb.get_or_init(|| self.build_comb(x_mont, y_mont));
        match cached {
            Some(table) if table.x == *x_mont && table.y == *y_mont => {
                self.to_affine(&self.comb_ladder(table, k))
            }
            _ => match self.build_comb(x_mont, y_mont) {
                Some(table) => self.to_affine(&self.comb_ladder(&table, k)),
                None => self.scalar_mul(x_mont, y_mont, k),
            },
        }
    }

    /// Batched scalar multiplication: every request runs the NAF ladder
    /// (affine addends — no per-request table inversions), or the cached
    /// comb ladder when the request's point is the comb's base, and the
    /// whole batch shares **one** final batched normalization
    /// ([`MontgomeryContext::mont_inv_batch`]). Each element of the result
    /// is bit-identical to the corresponding serial
    /// [`FixedCurve::scalar_mul`] call; `None` encodes infinity.
    pub fn scalar_mul_batch(
        &self,
        requests: &[(Residue, Residue, Residue)],
    ) -> Vec<Option<(Residue, Residue)>> {
        let comb = self.comb.get().and_then(|c| c.as_ref());
        let accs: Vec<JPoint> = requests
            .iter()
            .map(|(x, y, k)| match comb {
                Some(table) if table.x == *x && table.y == *y => self.comb_ladder(table, k),
                _ => self.naf_ladder(x, y, k),
            })
            .collect();
        let mut out = vec![None; requests.len()];
        let finite: Vec<usize> = (0..accs.len()).filter(|&i| !accs[i].z.is_zero()).collect();
        if finite.is_empty() {
            return out;
        }
        let mut zs: Vec<Residue> = finite.iter().map(|&i| accs[i].z).collect();
        let mut scratch = vec![Residue::ZERO; zs.len()];
        let ok = self.ctx.mont_inv_batch(&mut zs, &mut scratch);
        debug_assert!(ok, "finite points have non-zero z");
        for (&i, z_inv) in finite.iter().zip(&zs) {
            let z_inv2 = self.sqr(z_inv);
            out[i] = Some((
                self.mul(&accs[i].x, &z_inv2),
                self.mul(&accs[i].y, &self.mul(&z_inv2, z_inv)),
            ));
        }
        out
    }
}

/// Lowers a finite affine point and a ≤256-bit scalar to fixed residues.
fn to_fixed_request(point: &AffinePoint, k: &BigUint) -> Option<(Residue, Residue, Residue)> {
    let (x, y) = point.coordinates()?;
    let k = Residue::from_biguint(k)?;
    let x = Residue::from_biguint(x.mont_repr()).expect("256-bit field residue fits in 4 limbs");
    let y = Residue::from_biguint(y.mont_repr()).expect("256-bit field residue fits in 4 limbs");
    Some((x, y, k))
}

/// Lifts a fixed ladder result back into the typed point representation.
fn from_fixed_result(result: Option<(Residue, Residue)>) -> AffinePoint {
    match result {
        None => AffinePoint::Infinity,
        Some((x, y)) => AffinePoint::Point {
            x: FpElement::from_mont_repr(x.to_biguint()),
            y: FpElement::from_mont_repr(y.to_biguint()),
        },
    }
}

impl Curve {
    /// Algorithm-dispatching fixed-backend entry, used when possible: the
    /// curve has a fixed backend, the point is finite, and the scalar fits
    /// in 256 bits — `None` when any precondition fails so the caller
    /// falls back to the heap ladder. Double-and-add and NAF map to their
    /// fixed ladders, and `Window4` maps to the cached fixed-base comb
    /// when `point` is the curve's base point (the repeated-base case the
    /// comb's one-time table pays for) and to the per-call
    /// batch-normalized window ladder otherwise. All paths are
    /// result-identical to the heap ladders because affine coordinates of
    /// `k · point` are unique.
    pub(crate) fn fixed_scalar_mul_with(
        &self,
        point: &AffinePoint,
        k: &BigUint,
        algorithm: ScalarMulAlgorithm,
    ) -> Option<AffinePoint> {
        let backend = self.fixed_backend()?;
        let (x, y, k) = to_fixed_request(point, k)?;
        Some(from_fixed_result(match algorithm {
            ScalarMulAlgorithm::DoubleAndAdd => backend.scalar_mul(&x, &y, &k),
            ScalarMulAlgorithm::Naf => backend.scalar_mul_naf(&x, &y, &k),
            ScalarMulAlgorithm::Window4 => {
                if point == self.base_point() {
                    backend.scalar_mul_comb(&x, &y, &k)
                } else {
                    backend.scalar_mul_window(&x, &y, &k, 4)
                }
            }
        }))
    }

    /// Computes `k_i · P_i` for a whole batch of requests, amortizing host
    /// wall-clock the way [`Curve::scalar_mul`] cannot: fixed-eligible
    /// requests (256-bit curve, finite point, ≤256-bit scalar) run through
    /// [`FixedCurve::scalar_mul_batch`] — NAF/comb ladders with one shared
    /// final batch inversion — and anything else falls back to the serial
    /// path, mirroring `scalar_mul`'s own dispatch. Every element is
    /// identical to a serial `scalar_mul` call on the same request.
    pub fn scalar_mul_batch(&self, requests: &[(AffinePoint, BigUint)]) -> Vec<AffinePoint> {
        let mut out: Vec<Option<AffinePoint>> = vec![None; requests.len()];
        if let Some(backend) = self.fixed_backend() {
            let mut slots = Vec::new();
            let mut fixed_requests = Vec::new();
            for (i, (point, k)) in requests.iter().enumerate() {
                if k.is_zero() || point.is_infinity() {
                    out[i] = Some(AffinePoint::Infinity);
                } else if let Some(request) = to_fixed_request(point, k) {
                    slots.push(i);
                    fixed_requests.push(request);
                }
            }
            for (i, result) in slots
                .into_iter()
                .zip(backend.scalar_mul_batch(&fixed_requests))
            {
                out[i] = Some(from_fixed_result(result));
            }
        }
        for (i, (point, k)) in requests.iter().enumerate() {
            if out[i].is_none() {
                out[i] = Some(self.scalar_mul(point, k, ScalarMulAlgorithm::DoubleAndAdd));
            }
        }
        out.into_iter()
            .map(|p| p.expect("every slot filled"))
            .collect()
    }
}

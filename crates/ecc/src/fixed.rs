//! Stack-allocated scalar-multiplication backend for 256-bit curves.
//!
//! The named 256-bit curves ([`crate::Secp256k1`], [`crate::P256`]) spend
//! their host time in Jacobian ladder steps whose field arithmetic all
//! funnels through heap-allocated [`bignum::BigUint`] residues. This module
//! re-runs the *same* formulas — the general and `a = -3` "dbl-2001-b"
//! doublings and the mixed-coordinate addition of
//! [`crate::Curve::jacobian_double`] / [`Curve::jacobian_add_mixed`] — on
//! [`bignum::fixed::Uint<4>`] stack words, with zero heap allocation from
//! the first doubling through the final Fermat inversion.
//!
//! Because the fixed backend shares the Montgomery radix `R = 2^256` with
//! the field's heap parameters (see [`field::FpContext::fixed256`]), every
//! intermediate here is the *bit-identical* Montgomery residue the heap
//! ladder would have produced; the differential suites in `tests/` pin
//! this.
//!
//! [`FixedCurve`] is constructed by [`Curve`] itself during
//! [`Curve::from_spec`] — there is no public constructor — and
//! [`Curve::scalar_mul`] dispatches to it automatically, so callers keep
//! the typed [`Curve`] API. [`Curve::fixed_backend`] exposes the backend
//! for benchmarks and differential tests.

use bignum::fixed::{add_mod, sub_mod, MontgomeryContext, Uint};
use bignum::BigUint;
use field::FpElement;

use crate::curve::Curve;
use crate::point::AffinePoint;

/// A 256-bit residue in Montgomery form on the fixed backend.
type Residue = Uint<4>;

/// A Jacobian point on the fixed backend; `z = 0` encodes infinity (with
/// `x = y = 1` in Montgomery form, mirroring the heap convention).
#[derive(Clone, Copy)]
struct JPoint {
    x: Residue,
    y: Residue,
    z: Residue,
}

/// The fixed-width ladder backend of a 256-bit [`Curve`].
///
/// Holds the field's shared-radix [`MontgomeryContext`] plus the curve
/// constants the doubling formulas need, all as stack values. Built by
/// [`Curve::from_spec`] exactly when the field has a
/// [`field::FpContext::fixed256`] backend; retrieved via
/// [`Curve::fixed_backend`].
#[derive(Clone, Debug)]
pub struct FixedCurve {
    ctx: MontgomeryContext<4>,
    /// The coefficient `a` in Montgomery form.
    a_mont: Residue,
    /// The constant 3 in Montgomery form (the fast doubling's tangent
    /// factor).
    three_mont: Residue,
    a_is_minus_three: bool,
}

impl FixedCurve {
    /// Builds the backend from the field context and curve coefficient.
    /// Crate-internal: curves construct this in [`Curve::from_spec`].
    pub(crate) fn new(ctx: MontgomeryContext<4>, a: &FpElement, a_is_minus_three: bool) -> Self {
        let a_mont = Residue::from_biguint(a.mont_repr())
            .expect("Montgomery residue of a 256-bit field fits in 4 limbs");
        let three_mont = ctx.to_mont(&Uint::from_u64(3));
        FixedCurve {
            ctx,
            a_mont,
            three_mont,
            a_is_minus_three,
        }
    }

    /// The fixed-width Montgomery context this backend computes in (shared
    /// radix with the curve's [`field::FpContext`]).
    pub fn context(&self) -> &MontgomeryContext<4> {
        &self.ctx
    }

    /// Whether the ladder uses the shortened `a = -3` doubling.
    pub fn a_is_minus_three(&self) -> bool {
        self.a_is_minus_three
    }

    #[inline]
    fn mul(&self, a: &Residue, b: &Residue) -> Residue {
        self.ctx.mont_mul(a, b)
    }

    #[inline]
    fn sqr(&self, a: &Residue) -> Residue {
        self.ctx.mont_mul(a, a)
    }

    #[inline]
    fn add(&self, a: &Residue, b: &Residue) -> Residue {
        add_mod(a, b, self.ctx.modulus())
    }

    #[inline]
    fn sub(&self, a: &Residue, b: &Residue) -> Residue {
        sub_mod(a, b, self.ctx.modulus())
    }

    #[inline]
    fn dbl(&self, a: &Residue) -> Residue {
        self.add(a, a)
    }

    fn infinity(&self) -> JPoint {
        JPoint {
            x: self.ctx.one_mont(),
            y: self.ctx.one_mont(),
            z: Residue::ZERO,
        }
    }

    /// Jacobian doubling, mirroring [`Curve::jacobian_double`]'s dispatch
    /// and formulas exactly.
    fn jacobian_double(&self, p: &JPoint) -> JPoint {
        if self.a_is_minus_three {
            return self.jacobian_double_fast(p);
        }
        if p.z.is_zero() || p.y.is_zero() {
            return self.infinity();
        }
        let a_sq = self.sqr(&p.x); // X1²
        let b_sq = self.sqr(&p.y); // Y1²
        let c = self.sqr(&b_sq); // Y1⁴
                                 // D = 2((X1 + B)² - A - C)
        let d = self.dbl(&self.sub(&self.sub(&self.sqr(&self.add(&p.x, &b_sq)), &a_sq), &c));
        // E = 3A + a·Z1⁴
        let z2 = self.sqr(&p.z);
        let e = self.add(
            &self.add(&self.dbl(&a_sq), &a_sq),
            &self.mul(&self.a_mont, &self.sqr(&z2)),
        );
        let f = self.sqr(&e);
        let x3 = self.sub(&f, &self.dbl(&d));
        let eight_c = self.dbl(&self.dbl(&self.dbl(&c)));
        let y3 = self.sub(&self.mul(&e, &self.sub(&d, &x3)), &eight_c);
        let z3 = self.dbl(&self.mul(&p.y, &p.z));
        JPoint {
            x: x3,
            y: y3,
            z: z3,
        }
    }

    /// Shortened `a = -3` doubling ("dbl-2001-b"), mirroring
    /// [`Curve::jacobian_double_fast`].
    fn jacobian_double_fast(&self, p: &JPoint) -> JPoint {
        debug_assert!(self.a_is_minus_three, "fast doubling requires a = -3");
        if p.z.is_zero() || p.y.is_zero() {
            return self.infinity();
        }
        let delta = self.sqr(&p.z); // Z1²
        let gamma = self.sqr(&p.y); // Y1²
        let beta = self.mul(&p.x, &gamma); // X1·Y1²
        let alpha = self.mul(
            &self.three_mont,
            &self.mul(&self.sub(&p.x, &delta), &self.add(&p.x, &delta)),
        );
        let beta4 = self.dbl(&self.dbl(&beta));
        let x3 = self.sub(&self.sqr(&alpha), &self.dbl(&beta4));
        let y3 = self.sub(
            &self.mul(&alpha, &self.sub(&beta4, &x3)),
            &self.dbl(&self.dbl(&self.dbl(&self.sqr(&gamma)))),
        );
        let z3 = self.dbl(&self.mul(&p.y, &p.z));
        JPoint {
            x: x3,
            y: y3,
            z: z3,
        }
    }

    /// Mixed-coordinate addition of an affine addend (`Z2 = 1`), mirroring
    /// [`Curve::jacobian_add_mixed`] including its degenerate cases.
    fn jacobian_add_mixed(&self, p: &JPoint, x2: &Residue, y2: &Residue) -> JPoint {
        if p.z.is_zero() {
            return JPoint {
                x: *x2,
                y: *y2,
                z: self.ctx.one_mont(),
            };
        }
        let z1z1 = self.sqr(&p.z);
        let u2 = self.mul(x2, &z1z1);
        let s2 = self.mul(y2, &self.mul(&p.z, &z1z1));
        if u2 == p.x {
            if s2 == p.y {
                return self.jacobian_double(p);
            }
            return self.infinity();
        }
        let h = self.sub(&u2, &p.x);
        let i = self.sqr(&self.dbl(&h));
        let j = self.mul(&h, &i);
        let r = self.dbl(&self.sub(&s2, &p.y));
        let v = self.mul(&p.x, &i);
        let x3 = self.sub(&self.sub(&self.sqr(&r), &j), &self.dbl(&v));
        let y3 = self.sub(
            &self.mul(&r, &self.sub(&v, &x3)),
            &self.dbl(&self.mul(&p.y, &j)),
        );
        let z3 = self.dbl(&self.mul(&p.z, &h));
        JPoint {
            x: x3,
            y: y3,
            z: z3,
        }
    }

    /// Normalizes back to affine form (one Fermat inversion, still on the
    /// stack); `None` is the point at infinity.
    fn to_affine(&self, p: &JPoint) -> Option<(Residue, Residue)> {
        if p.z.is_zero() {
            return None;
        }
        let z_inv = self
            .ctx
            .mont_inv_prime(&p.z)
            .expect("finite point has z != 0");
        let z_inv2 = self.sqr(&z_inv);
        let z_inv3 = self.mul(&z_inv2, &z_inv);
        Some((self.mul(&p.x, &z_inv2), self.mul(&p.y, &z_inv3)))
    }

    /// Left-to-right double-and-add ladder on Montgomery-form affine
    /// coordinates, mirroring the heap `double_and_add` step for step.
    /// `None` is the point at infinity. Performs no heap allocation.
    pub fn scalar_mul(
        &self,
        x_mont: &Residue,
        y_mont: &Residue,
        k: &Residue,
    ) -> Option<(Residue, Residue)> {
        let mut acc = self.infinity();
        for i in (0..k.bit_len()).rev() {
            acc = self.jacobian_double(&acc);
            if k.bit(i) {
                acc = self.jacobian_add_mixed(&acc, x_mont, y_mont);
            }
        }
        self.to_affine(&acc)
    }
}

impl Curve {
    /// Runs `k · point` on the fixed backend when possible: the curve has
    /// one, the point is finite, and the scalar fits in 256 bits. Returns
    /// `None` when any precondition fails so the caller falls back to the
    /// heap ladder.
    pub(crate) fn fixed_scalar_mul(&self, point: &AffinePoint, k: &BigUint) -> Option<AffinePoint> {
        let backend = self.fixed_backend()?;
        let (x, y) = point.coordinates()?;
        let k = Residue::from_biguint(k)?;
        let x =
            Residue::from_biguint(x.mont_repr()).expect("256-bit field residue fits in 4 limbs");
        let y =
            Residue::from_biguint(y.mont_repr()).expect("256-bit field residue fits in 4 limbs");
        Some(match backend.scalar_mul(&x, &y, &k) {
            None => AffinePoint::Infinity,
            Some((x, y)) => AffinePoint::Point {
                x: FpElement::from_mont_repr(x.to_biguint()),
                y: FpElement::from_mont_repr(y.to_biguint()),
            },
        })
    }
}
